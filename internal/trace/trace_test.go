package trace

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"repro/internal/job"
	"repro/internal/resource"
	"repro/internal/stats"
)

func TestGenerateShortJobsBasics(t *testing.T) {
	jobs, err := GenerateShortJobs(Config{Seed: 1, NumJobs: 200})
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 200 {
		t.Fatalf("got %d jobs", len(jobs))
	}
	prevArrival := 0
	for i, j := range jobs {
		if err := j.Validate(); err != nil {
			t.Fatalf("job %d invalid: %v", i, err)
		}
		if int(j.ID) != i {
			t.Errorf("job %d has ID %d", i, j.ID)
		}
		if j.Arrival < prevArrival {
			t.Error("jobs must be sorted by arrival")
		}
		prevArrival = j.Arrival
		if j.Duration < 1 || j.Duration > MaxShortJobSlots {
			t.Errorf("job %d duration %d outside [1, %d]", i, j.Duration, MaxShortJobSlots)
		}
		if len(j.Usage) != j.Duration {
			t.Errorf("job %d usage len %d != duration %d", i, len(j.Usage), j.Duration)
		}
	}
}

func TestGenerateShortJobsDeterministic(t *testing.T) {
	a, err := GenerateShortJobs(Config{Seed: 7, NumJobs: 50})
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateShortJobs(Config{Seed: 7, NumJobs: 50})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if !reflect.DeepEqual(a[i], b[i]) {
			t.Fatalf("job %d differs across same-seed runs", i)
		}
	}
	c, err := GenerateShortJobs(Config{Seed: 8, NumJobs: 50})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a {
		if !reflect.DeepEqual(a[i].Usage, c[i].Usage) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should produce different workloads")
	}
}

func TestGenerateShortJobsNegativeCount(t *testing.T) {
	if _, err := GenerateShortJobs(Config{NumJobs: -1}); err == nil {
		t.Error("negative NumJobs should fail")
	}
}

func TestClassMixRoughlyMatchesWeights(t *testing.T) {
	jobs, err := GenerateShortJobs(Config{Seed: 3, NumJobs: 2000})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[job.Class]int{}
	for _, j := range jobs {
		counts[j.Class]++
	}
	// Default weights 0.2/0.35/0.35/0.1 — allow generous slack.
	frac := func(c job.Class) float64 { return float64(counts[c]) / float64(len(jobs)) }
	if f := frac(job.CPUIntensive); f < 0.25 || f > 0.45 {
		t.Errorf("cpu-intensive fraction %v outside [0.25, 0.45]", f)
	}
	if f := frac(job.MemIntensive); f < 0.25 || f > 0.45 {
		t.Errorf("mem-intensive fraction %v outside [0.25, 0.45]", f)
	}
}

func TestClassDemandShape(t *testing.T) {
	jobs, err := GenerateShortJobs(Config{Seed: 5, NumJobs: 500})
	if err != nil {
		t.Fatal(err)
	}
	vmCap := resource.New(4, 16, 180)
	for _, j := range jobs {
		var wantDominant resource.Kind
		switch j.Class {
		case job.CPUIntensive:
			wantDominant = resource.CPU
		case job.MemIntensive:
			wantDominant = resource.Memory
		case job.StorageIntensive:
			wantDominant = resource.Storage
		default:
			continue
		}
		if got := j.Dominant(vmCap); got != wantDominant {
			t.Errorf("job %d class %v has dominant %v", j.ID, j.Class, got)
		}
	}
}

func TestShortJobDemandsFitHalfVM(t *testing.T) {
	jobs, err := GenerateShortJobs(Config{Seed: 11, NumJobs: 300})
	if err != nil {
		t.Fatal(err)
	}
	vmCap := resource.New(4, 16, 180)
	for _, j := range jobs {
		// Peak demand must fit in one VM (so placement is feasible); the
		// burst multiplier can push past half but never past the VM.
		if !j.PeakDemand().FitsIn(vmCap) {
			t.Errorf("job %d peak %v exceeds VM capacity", j.ID, j.PeakDemand())
		}
	}
}

func TestNoDominantPeriodInDemands(t *testing.T) {
	// The premise of the paper: short-job traces are pattern-free. The
	// PRESS-style detector should find no dominant period in the vast
	// majority of generated series.
	jobs, err := GenerateShortJobs(Config{Seed: 13, NumJobs: 200, MeanDuration: 20})
	if err != nil {
		t.Fatal(err)
	}
	withPattern := 0
	checked := 0
	for _, j := range jobs {
		if j.Duration < 16 {
			continue
		}
		series := make([]float64, j.Duration)
		for k := range series {
			series[k] = j.Usage[k].At(resource.CPU)
		}
		checked++
		if _, ok := stats.DominantPeriod(series, 0.5); ok {
			withPattern++
		}
	}
	if checked == 0 {
		t.Skip("no long enough jobs generated")
	}
	if frac := float64(withPattern) / float64(checked); frac > 0.2 {
		t.Errorf("%.0f%% of series have a dominant period; workload is too periodic", frac*100)
	}
}

func TestGenerateResidents(t *testing.T) {
	caps := []resource.Vector{
		resource.New(4, 16, 180),
		resource.New(2, 4, 720),
	}
	res, err := GenerateResidents(ResidentConfig{Seed: 2}, caps, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("got %d residents", len(res))
	}
	for i, r := range res {
		if r.ID != job.ID(1000+i) {
			t.Errorf("resident %d has ID %d", i, r.ID)
		}
		if !r.Request.FitsIn(caps[i]) {
			t.Errorf("resident %d reservation %v exceeds VM %v", i, r.Request, caps[i])
		}
		for s, u := range r.Usage {
			if !u.FitsIn(r.Request) {
				t.Errorf("resident %d usage at %d exceeds reservation", i, s)
				break
			}
		}
		// Mean usage must be well below the reservation (the slack CORP
		// harvests): check CPU mean < 80% of reserved CPU.
		mean := r.MeanDemand()
		if mean.At(resource.CPU) > 0.8*r.Request.At(resource.CPU) {
			t.Errorf("resident %d mean CPU %v too close to reservation %v",
				i, mean.At(resource.CPU), r.Request.At(resource.CPU))
		}
	}
}

func TestResidentsFluctuate(t *testing.T) {
	caps := []resource.Vector{resource.New(4, 16, 180)}
	res, err := GenerateResidents(ResidentConfig{Seed: 4, Horizon: 400}, caps, 0)
	if err != nil {
		t.Fatal(err)
	}
	series := make([]float64, len(res[0].Usage))
	for i, u := range res[0].Usage {
		series[i] = u.At(resource.CPU)
	}
	lo, hi, err := stats.MinMax(series)
	if err != nil {
		t.Fatal(err)
	}
	if hi-lo < 0.2*stats.Mean(series) {
		t.Errorf("resident usage barely fluctuates: range [%v, %v]", lo, hi)
	}
}

func TestDensify(t *testing.T) {
	coarse := []resource.Vector{
		resource.New(10, 10, 10),
		resource.New(40, 40, 40),
	}
	fine := Densify(coarse, 0, 1)
	if len(fine) != 2*CoarseSlots {
		t.Fatalf("len = %d, want %d", len(fine), 2*CoarseSlots)
	}
	// First fine slot equals the first coarse sample.
	if fine[0] != coarse[0] {
		t.Errorf("fine[0] = %v", fine[0])
	}
	// Interpolation is monotone toward the next sample within the first
	// coarse window.
	for s := 1; s < CoarseSlots; s++ {
		if fine[s].At(resource.CPU) < fine[s-1].At(resource.CPU) {
			t.Errorf("interpolation not monotone at %d", s)
			break
		}
	}
	// Midpoint is halfway.
	mid := fine[CoarseSlots/2].At(resource.CPU)
	if math.Abs(mid-25) > 1.1 {
		t.Errorf("midpoint = %v, want ≈ 25", mid)
	}
	if Densify(nil, 0.1, 1) != nil {
		t.Error("empty coarse should densify to nil")
	}
}

func TestDensifyJitterNonNegativeAndDeterministic(t *testing.T) {
	coarse := []resource.Vector{resource.New(1, 1, 1), resource.New(0.1, 0.1, 0.1)}
	a := Densify(coarse, 0.5, 42)
	b := Densify(coarse, 0.5, 42)
	if !reflect.DeepEqual(a, b) {
		t.Error("Densify must be deterministic per seed")
	}
	for i, v := range a {
		if !v.NonNegative() {
			t.Errorf("fine[%d] = %v negative", i, v)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	jobs, err := GenerateShortJobs(Config{Seed: 21, NumJobs: 25})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, jobs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(jobs) {
		t.Fatalf("round trip count %d != %d", len(got), len(jobs))
	}
	for i := range jobs {
		if !reflect.DeepEqual(jobs[i], got[i]) {
			t.Fatalf("job %d mutated in JSON round trip", i)
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	jobs, err := GenerateShortJobs(Config{Seed: 22, NumJobs: 25})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, jobs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(jobs) {
		t.Fatalf("round trip count %d != %d", len(got), len(jobs))
	}
	for i := range jobs {
		if !reflect.DeepEqual(jobs[i], got[i]) {
			t.Fatalf("job %d mutated in CSV round trip", i)
		}
	}
}

func TestReadJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadJSON(bytes.NewBufferString("{not json")); err == nil {
		t.Error("garbage JSON should fail")
	}
	if _, err := ReadJSON(bytes.NewBufferString(`[{"id":0,"class":"weird","arrival":0,"duration":1,"slo_factor":1,"request":[1,1,1],"usage":[[1,1,1]]}]`)); err == nil {
		t.Error("unknown class should fail")
	}
}

func TestReadCSVRejectsGarbage(t *testing.T) {
	if _, err := ReadCSV(bytes.NewBufferString("a,b\n1,2\n")); err == nil {
		t.Error("wrong column count should fail")
	}
	bad := "job_id,class,arrival,duration,slo_factor,req_cpu,req_mem,req_sto,slot,use_cpu,use_mem,use_sto\nx,balanced,0,1,1,1,1,1,0,1,1,1\n"
	if _, err := ReadCSV(bytes.NewBufferString(bad)); err == nil {
		t.Error("non-numeric job_id should fail")
	}
}

func TestSortInts(t *testing.T) {
	xs := []int{5, 2, 8, 1, 2}
	sortInts(xs)
	for i := 1; i < len(xs); i++ {
		if xs[i] < xs[i-1] {
			t.Fatalf("not sorted: %v", xs)
		}
	}
}

func BenchmarkGenerate300Jobs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := GenerateShortJobs(Config{Seed: int64(i), NumJobs: 300}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestGenerateLongJobs(t *testing.T) {
	jobs, err := GenerateLongJobs(LongJobConfig{Seed: 3, NumJobs: 20}, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 20 {
		t.Fatalf("got %d long jobs", len(jobs))
	}
	prevArrival := 0
	for i, j := range jobs {
		if err := j.Validate(); err != nil {
			t.Fatalf("long job %d invalid: %v", i, err)
		}
		if j.ID < 5000 || j.ID >= 5020 {
			t.Errorf("long job ID %d outside range", j.ID)
		}
		if j.Duration < 60 || j.Duration > 240 {
			t.Errorf("long job %d duration %d outside [60, 240]", i, j.Duration)
		}
		if j.Arrival < prevArrival {
			t.Error("long jobs must be sorted by arrival")
		}
		prevArrival = j.Arrival
		// Usage within the reservation (the slack is what CORP harvests).
		for s, u := range j.Usage {
			if !u.FitsIn(j.Request) {
				t.Fatalf("long job %d usage at %d exceeds reservation", i, s)
			}
		}
		mean := j.MeanDemand()
		if mean.At(resource.CPU) >= j.Request.At(resource.CPU) {
			t.Errorf("long job %d has no CPU slack", i)
		}
	}
	if _, err := GenerateLongJobs(LongJobConfig{NumJobs: -1}, 0); err == nil {
		t.Error("negative NumJobs should fail")
	}
}

func TestGenerateLongJobsDeterministic(t *testing.T) {
	a, _ := GenerateLongJobs(LongJobConfig{Seed: 9, NumJobs: 5}, 0)
	b, _ := GenerateLongJobs(LongJobConfig{Seed: 9, NumJobs: 5}, 0)
	for i := range a {
		if !reflect.DeepEqual(a[i], b[i]) {
			t.Fatalf("long job %d differs across same-seed runs", i)
		}
	}
}

func TestArrivalPatternNames(t *testing.T) {
	if ArrivalUniform.String() != "uniform" || ArrivalBursty.String() != "bursty" ||
		ArrivalDiurnal.String() != "diurnal" {
		t.Error("pattern names wrong")
	}
	if ArrivalPattern(9).String() != "ArrivalPattern(9)" {
		t.Error("unknown pattern name wrong")
	}
}

func TestBurstyArrivalsConcentrate(t *testing.T) {
	jobs, err := GenerateShortJobs(Config{Seed: 6, NumJobs: 400, ArrivalSpan: 200, Arrivals: ArrivalBursty})
	if err != nil {
		t.Fatal(err)
	}
	// Count distinct arrival slots: bursts concentrate arrivals into few
	// slots compared to uniform.
	distinct := map[int]bool{}
	for _, j := range jobs {
		distinct[j.Arrival] = true
		if j.Arrival < 0 || j.Arrival >= 200 {
			t.Fatalf("arrival %d outside span", j.Arrival)
		}
	}
	if len(distinct) > 80 {
		t.Errorf("bursty arrivals spread over %d slots; expected concentration", len(distinct))
	}
	uniform, err := GenerateShortJobs(Config{Seed: 6, NumJobs: 400, ArrivalSpan: 200})
	if err != nil {
		t.Fatal(err)
	}
	uDistinct := map[int]bool{}
	for _, j := range uniform {
		uDistinct[j.Arrival] = true
	}
	if len(distinct) >= len(uDistinct) {
		t.Errorf("bursty (%d slots) should concentrate more than uniform (%d)", len(distinct), len(uDistinct))
	}
}

func TestDiurnalArrivalsSkewTowardPeak(t *testing.T) {
	jobs, err := GenerateShortJobs(Config{Seed: 7, NumJobs: 600, ArrivalSpan: 200, Arrivals: ArrivalDiurnal})
	if err != nil {
		t.Fatal(err)
	}
	// sin peaks in the first half of the span: most arrivals land there.
	firstHalf := 0
	for _, j := range jobs {
		if j.Arrival < 100 {
			firstHalf++
		}
	}
	if frac := float64(firstHalf) / 600; frac < 0.6 {
		t.Errorf("diurnal first-half fraction %.2f; expected the sine peak to dominate", frac)
	}
}
