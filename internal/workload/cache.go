package workload

import (
	"sync"
	"sync/atomic"
)

// DefaultMaxEntries bounds the Default cache. A full figure suite needs a
// few dozen distinct snapshots (one per seed × sweep-point workload); each
// is a handful of megabytes at paper scale, so the bound caps steady-state
// memory in the low hundreds of megabytes worst case.
const DefaultMaxEntries = 64

// Default is the process-wide snapshot cache. sim.Run consults it whenever
// no pre-built snapshot was supplied, and sim.RunMany warms it before
// fanning a sweep out, so every scheme × replication sharing a workload key
// builds the trace exactly once. SetEnabled(false) bypasses it everywhere —
// the A/B switch behind the -workload-cache=on|off flags.
var Default = NewCache(DefaultMaxEntries)

// Stats is a point-in-time snapshot of a cache's counters.
type Stats struct {
	// Hits counts Get calls served from an existing (or in-flight)
	// snapshot — generator work avoided.
	Hits uint64 `json:"hits"`
	// Misses counts Get calls that built the snapshot.
	Misses uint64 `json:"misses"`
	// Evictions counts entries dropped to respect the size bound.
	Evictions uint64 `json:"evictions"`
	// Entries is the number of snapshots currently resident.
	Entries int `json:"entries"`
	// Bytes is the approximate retained payload of resident snapshots.
	Bytes int64 `json:"bytes"`
}

// Add returns the element-wise sum of two stats snapshots. The farm
// dispatcher uses it to aggregate per-worker cache counters (streamed in
// heartbeats) into a fleet-wide total: across N worker processes a
// campaign with W distinct workloads should build at most N×W snapshots
// no matter how many runs it fans out.
func (s Stats) Add(o Stats) Stats {
	return Stats{
		Hits:      s.Hits + o.Hits,
		Misses:    s.Misses + o.Misses,
		Evictions: s.Evictions + o.Evictions,
		Entries:   s.Entries + o.Entries,
		Bytes:     s.Bytes + o.Bytes,
	}
}

// Cache is a content-addressed snapshot store with singleflight builds:
// concurrent Gets for one key share a single generation, so a sweep that
// fans 4 schemes × R replications out over shared workloads never builds a
// trace twice. All methods are safe for concurrent use.
type Cache struct {
	enabled atomic.Bool
	hits    atomic.Uint64
	misses  atomic.Uint64
	evicted atomic.Uint64

	mu      sync.Mutex
	max     int
	entries map[string]*cacheEntry
}

// cacheEntry is one key's slot; ready is closed once snap/err are final.
type cacheEntry struct {
	ready chan struct{}
	snap  *Snapshot
	err   error
}

// NewCache returns an enabled cache holding at most maxEntries snapshots
// (≤ 0 means DefaultMaxEntries).
func NewCache(maxEntries int) *Cache {
	if maxEntries <= 0 {
		maxEntries = DefaultMaxEntries
	}
	c := &Cache{max: maxEntries, entries: make(map[string]*cacheEntry)}
	c.enabled.Store(true)
	return c
}

// Enabled reports whether callers should use the cache.
func (c *Cache) Enabled() bool { return c.enabled.Load() }

// SetEnabled flips cache use on or off. Disabling does not drop resident
// entries (Reset does); it only steers callers to build privately.
func (c *Cache) SetEnabled(on bool) { c.enabled.Store(on) }

// Get returns the snapshot for p, building it at most once per key no
// matter how many goroutines ask concurrently. Failed builds are not
// cached; the next Get for the key retries.
func (c *Cache) Get(p Params) (*Snapshot, error) {
	key := p.Key()
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.mu.Unlock()
		c.hits.Add(1)
		<-e.ready
		return e.snap, e.err
	}
	e := &cacheEntry{ready: make(chan struct{})}
	c.evictLocked()
	c.entries[key] = e
	c.mu.Unlock()

	c.misses.Add(1)
	e.snap, e.err = Build(p)
	if e.err != nil {
		c.mu.Lock()
		delete(c.entries, key)
		c.mu.Unlock()
	}
	close(e.ready)
	return e.snap, e.err
}

// evictLocked drops one completed entry when the cache is full. The victim
// is whichever completed entry map iteration yields first — a coarse random
// policy, which is fine for a cache whose working set (one figure's seeds)
// fits well under the bound. In-flight builds are never evicted.
func (c *Cache) evictLocked() {
	if len(c.entries) < c.max {
		return
	}
	for k, e := range c.entries {
		select {
		case <-e.ready:
			delete(c.entries, k)
			c.evicted.Add(1)
			return
		default:
		}
	}
}

// Stats returns the cache's current counters.
func (c *Cache) Stats() Stats {
	s := Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evicted.Load(),
	}
	c.mu.Lock()
	s.Entries = len(c.entries)
	for _, e := range c.entries {
		select {
		case <-e.ready:
			if e.snap != nil {
				s.Bytes += e.snap.Bytes()
			}
		default:
		}
	}
	c.mu.Unlock()
	return s
}

// Reset drops every resident snapshot and zeroes the counters. In-flight
// builds complete and are returned to their waiters but are forgotten by
// the cache.
func (c *Cache) Reset() {
	c.mu.Lock()
	c.entries = make(map[string]*cacheEntry)
	c.mu.Unlock()
	c.hits.Store(0)
	c.misses.Store(0)
	c.evicted.Store(0)
}
