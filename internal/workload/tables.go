package workload

import (
	"repro/internal/job"
	"repro/internal/resource"
)

// ResidentTables precomputes each resident's periodic demand and unused
// vectors for every phase of its usage cycle. Resident demand is periodic —
// job.DemandAt(k) wraps k % len(Usage) — so absent surges and long jobs a
// VM's (residentUse, unused) pair at slot t depends only on t mod Period.
// The simulator's telemetry fast path turns its per-VM vector math into two
// row copies from these tables; because every entry is computed by the very
// same DemandAt/UnusedAt calls the slow path would make, the values are
// bit-identical, not merely close.
//
// Layout is phase-major: row p holds all VMs' vectors for phase p
// contiguously, so a slot's fast path streams two dense rows instead of
// striding across per-VM blocks.
type ResidentTables struct {
	// NumVMs is the number of residents (one per VM).
	NumVMs int
	// Period is the shared usage-cycle length in slots.
	Period int

	demand []resource.Vector // [p*NumVMs+v] = residents[v].DemandAt(p)
	unused []resource.Vector // [p*NumVMs+v] = residents[v].UnusedAt(p)
}

// DemandRow returns the per-VM resident demand vectors for phase p
// (p must already be reduced mod Period). Read-only.
func (t *ResidentTables) DemandRow(p int) []resource.Vector {
	return t.demand[p*t.NumVMs : (p+1)*t.NumVMs]
}

// UnusedRow returns the per-VM resident unused vectors for phase p. Read-only.
func (t *ResidentTables) UnusedRow(p int) []resource.Vector {
	return t.unused[p*t.NumVMs : (p+1)*t.NumVMs]
}

// Bytes returns the retained size of the tables.
func (t *ResidentTables) Bytes() int64 {
	const vecBytes = resource.NumKinds * 8
	return int64(len(t.demand)+len(t.unused)) * vecBytes
}

// buildResidentTables materialises the tables for a resident population, or
// returns nil when the population is empty or the usage cycles are not all
// the same length (then there is no single period to tabulate).
func buildResidentTables(residents []*job.Job) *ResidentTables {
	if len(residents) == 0 {
		return nil
	}
	period := len(residents[0].Usage)
	if period == 0 {
		return nil
	}
	for _, r := range residents {
		if len(r.Usage) != period {
			return nil
		}
	}
	t := &ResidentTables{
		NumVMs: len(residents),
		Period: period,
		demand: make([]resource.Vector, period*len(residents)),
		unused: make([]resource.Vector, period*len(residents)),
	}
	for p := 0; p < period; p++ {
		row := p * t.NumVMs
		for v, r := range residents {
			t.demand[row+v] = r.DemandAt(p)
			t.unused[row+v] = r.UnusedAt(p)
		}
	}
	return t
}

// Tables returns the snapshot's periodic resident tables, building them on
// first call (guarded by a sync.Once, like the lazy history). Returns nil
// when the resident population has no single shared period. Read-only;
// shared by every run holding the snapshot.
func (s *Snapshot) Tables() *ResidentTables {
	s.tabOnce.Do(func() {
		s.tables = buildResidentTables(s.residents)
		if s.tables != nil {
			s.tabBytes.Store(s.tables.Bytes())
		}
	})
	return s.tables
}
