package workload

import (
	"repro/internal/job"
	"repro/internal/resource"
)

// ResidentTables precomputes each resident's periodic demand and unused
// vectors for every phase of its usage cycle. Resident demand is periodic —
// job.DemandAt(k) wraps k % len(Usage) — so absent surges and long jobs a
// VM's (residentUse, unused) pair at slot t depends only on t mod Period.
// The simulator's telemetry fast path turns its per-VM vector math into two
// row copies from these tables; because every entry is computed by the very
// same DemandAt/UnusedAt calls the slow path would make, the values are
// bit-identical, not merely close.
//
// Layout is phase-major: row p holds all VMs' vectors for phase p
// contiguously, so a slot's fast path streams two dense rows instead of
// striding across per-VM blocks.
//
// Aliasing contract: the rows returned by DemandRow/UnusedRow are views
// into the snapshot-shared backing slabs, and the simulator's telemetry
// fast path aliases its per-slot scratch directly to them (copy-on-write:
// it falls back to copying into run-owned buffers only when a down-mask or
// surge mutation must patch individual entries). Every consumer of those
// rows — predictor feeds, the execute reduction, timeline snapshots —
// therefore MUST treat them as strictly read-only; a single write through
// an aliased row would corrupt the table for every concurrent run sharing
// the snapshot.
type ResidentTables struct {
	// NumVMs is the number of residents (one per VM).
	NumVMs int
	// Period is the shared usage-cycle length in slots.
	Period int

	demand []resource.Vector // [p*NumVMs+v] = residents[v].DemandAt(p)
	unused []resource.Vector // [p*NumVMs+v] = residents[v].UnusedAt(p)

	// demandSum[p] is the fold of DemandRow(p) in ascending VM order —
	// the exact addition sequence the simulator's execute reduction
	// performs for a quiescent slot's cluster demand, precomputed once so
	// a span fast-forward can replay k slots without k O(VMs) walks.
	demandSum []resource.Vector
}

// DemandRow returns the per-VM resident demand vectors for phase p
// (p must already be reduced mod Period). Read-only.
func (t *ResidentTables) DemandRow(p int) []resource.Vector {
	return t.demand[p*t.NumVMs : (p+1)*t.NumVMs]
}

// UnusedRow returns the per-VM resident unused vectors for phase p. Read-only.
func (t *ResidentTables) UnusedRow(p int) []resource.Vector {
	return t.unused[p*t.NumVMs : (p+1)*t.NumVMs]
}

// DemandRowSum returns the fold of DemandRow(p) in ascending VM order,
// bit-identical to summing the row entry by entry.
func (t *ResidentTables) DemandRowSum(p int) resource.Vector {
	return t.demandSum[p]
}

// Bytes returns the retained size of the tables.
func (t *ResidentTables) Bytes() int64 {
	const vecBytes = resource.NumKinds * 8
	return int64(len(t.demand)+len(t.unused)+len(t.demandSum)) * vecBytes
}

// buildResidentTables materialises the tables for a resident population, or
// returns nil when the population is empty or the usage cycles are not all
// the same length (then there is no single period to tabulate).
func buildResidentTables(residents []*job.Job) *ResidentTables {
	if len(residents) == 0 {
		return nil
	}
	period := len(residents[0].Usage)
	if period == 0 {
		return nil
	}
	for _, r := range residents {
		if len(r.Usage) != period {
			return nil
		}
	}
	t := &ResidentTables{
		NumVMs:    len(residents),
		Period:    period,
		demand:    make([]resource.Vector, period*len(residents)),
		unused:    make([]resource.Vector, period*len(residents)),
		demandSum: make([]resource.Vector, period),
	}
	for p := 0; p < period; p++ {
		row := p * t.NumVMs
		var sum resource.Vector
		for v, r := range residents {
			t.demand[row+v] = r.DemandAt(p)
			t.unused[row+v] = r.UnusedAt(p)
			sum = sum.Add(t.demand[row+v])
		}
		t.demandSum[p] = sum
	}
	return t
}

// Tables returns the snapshot's periodic resident tables, building them on
// first call (guarded by a sync.Once, like the lazy history). Returns nil
// when the resident population has no single shared period. Read-only;
// shared by every run holding the snapshot.
func (s *Snapshot) Tables() *ResidentTables {
	s.tabOnce.Do(func() {
		s.tables = buildResidentTables(s.residents)
		if s.tables != nil {
			s.tabBytes.Store(s.tables.Bytes())
		}
	})
	return s.tables
}
