package workload

import (
	"testing"

	"repro/internal/job"
	"repro/internal/resource"
	"repro/internal/trace"
)

func tableTestParams(t *testing.T, numVMs, horizon int) Params {
	t.Helper()
	caps := make([]resource.Vector, numVMs)
	for i := range caps {
		caps[i] = resource.Vector{4, 16, 180}
	}
	return Params{
		VMCaps:    caps,
		Residents: trace.ResidentConfig{Seed: 3, Horizon: horizon, ReservedShare: 0.6},
	}
}

// TestResidentTablesMatchRecomputation pins every table entry exactly equal
// (==, not approximately) to the DemandAt/UnusedAt recomputation it
// replaces, across three full period wraps.
func TestResidentTablesMatchRecomputation(t *testing.T) {
	snap, err := Build(tableTestParams(t, 12, 30))
	if err != nil {
		t.Fatal(err)
	}
	tab := snap.Tables()
	if tab == nil {
		t.Fatal("Tables() returned nil for a uniform resident population")
	}
	residents := snap.Residents()
	if tab.NumVMs != len(residents) {
		t.Fatalf("NumVMs = %d, want %d", tab.NumVMs, len(residents))
	}
	if tab.Period != 30 {
		t.Fatalf("Period = %d, want 30", tab.Period)
	}
	for slot := 0; slot < 3*tab.Period; slot++ {
		p := slot % tab.Period
		demand, unused := tab.DemandRow(p), tab.UnusedRow(p)
		for v, r := range residents {
			if want := r.DemandAt(slot); demand[v] != want {
				t.Fatalf("slot %d VM %d: demand %v != DemandAt %v", slot, v, demand[v], want)
			}
			if want := r.UnusedAt(slot); unused[v] != want {
				t.Fatalf("slot %d VM %d: unused %v != UnusedAt %v", slot, v, unused[v], want)
			}
		}
	}
}

// TestTablesLazyAndCounted pins the lazy build: Bytes() must not include
// the tables until Tables() is first called, and repeated calls return the
// same instance.
func TestTablesLazyAndCounted(t *testing.T) {
	snap, err := Build(tableTestParams(t, 8, 24))
	if err != nil {
		t.Fatal(err)
	}
	before := snap.Bytes()
	tab := snap.Tables()
	if tab == nil {
		t.Fatal("Tables() returned nil")
	}
	after := snap.Bytes()
	if grow := after - before; grow != tab.Bytes() {
		t.Fatalf("Bytes grew by %d after Tables(), want %d", grow, tab.Bytes())
	}
	// Two per-(phase, VM) tables plus the per-phase demand-row sums.
	if want := int64((2*8*24 + 24) * resource.NumKinds * 8); tab.Bytes() != want {
		t.Fatalf("table Bytes = %d, want %d", tab.Bytes(), want)
	}
	if again := snap.Tables(); again != tab {
		t.Fatal("second Tables() call returned a different instance")
	}
}

// TestTablesNonUniformPeriod pins the guard: resident populations without
// one shared usage-cycle length have no single period and must yield nil
// tables (the simulator then keeps the recomputation path).
func TestTablesNonUniformPeriod(t *testing.T) {
	if tab := buildResidentTables(nil); tab != nil {
		t.Fatal("empty population: want nil tables")
	}
	mk := func(n int) *job.Job {
		usage := make([]resource.Vector, n)
		for i := range usage {
			usage[i] = resource.Vector{1, 2, 3}
		}
		return &job.Job{ID: 1, Request: resource.Vector{2, 4, 6}, Usage: usage, Duration: n}
	}
	if tab := buildResidentTables([]*job.Job{mk(6), mk(8)}); tab != nil {
		t.Fatal("mixed-period population: want nil tables")
	}
	if tab := buildResidentTables([]*job.Job{mk(6), mk(6)}); tab == nil {
		t.Fatal("uniform population: want tables")
	}
}
