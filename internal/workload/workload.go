// Package workload builds and caches immutable workload snapshots: the
// fully generated resident, short-job, history-resident and long-job traces
// for one (seed, workload-config) key.
//
// The paper's evaluation compares four schemes on the *same* workload at
// every sweep point, and the SLO figures replicate each point over several
// seeds — so within one figure the identical trace is consumed by many
// simulation runs. A Snapshot lets the harness generate that trace exactly
// once and share it read-only across all of them (the classic "build the
// dataset once, share it across trainers" optimisation), instead of paying
// the generator schemes × replications times for byte-identical inputs.
//
// Immutability contract: a Snapshot is immutable after Build returns. The
// job specs and slices it hands out are shared by every run that holds the
// snapshot, concurrently; callers must never write to them. The simulator
// honours this by wrapping each spec in a fresh per-run job.Runtime and
// keeping every run-local adjustment (arrival offsets, placement, progress)
// on the runtime. The only internal mutation is the lazily generated
// history trace, which is guarded by a sync.Once and deterministic, so it
// is observationally immutable.
//
// Keying: snapshots are content-addressed by Params.Key, a SHA-256 over a
// canonical binary encoding of every input that influences the generated
// bytes (generator configs with the run seed already folded in, plus the VM
// capacity list). Distinct inputs therefore never share a snapshot, and
// identical inputs always do — the property the cache-equivalence tests
// pin.
package workload

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/job"
	"repro/internal/resource"
	"repro/internal/trace"
)

// Job-ID bases for the generated populations, disjoint so IDs never collide
// with the short jobs' sequential IDs within one simulation.
const (
	// ResidentFirstID is the ID of the first resident job.
	ResidentFirstID = job.ID(1_000_000)
	// HistoryFirstID is the ID of the first history resident.
	HistoryFirstID = job.ID(2_000_000)
	// LongFirstID is the ID of the first long-lived service job.
	LongFirstID = job.ID(3_000_000)
)

// History-trace shape: the CORP pre-deployment training feed ("we first
// used the deep learning algorithm to predict ... based on the historical
// resource usage data") uses sibling resident series from a salted seed
// stream, bounded to a small fleet.
const (
	// HistoryHorizon is the number of slots of history per sibling.
	HistoryHorizon = 240
	// HistorySeedSalt decorrelates the history stream from the live
	// residents generated for the same run seed.
	HistorySeedSalt = 0x415
	// MaxHistoryVMs bounds the history fleet size.
	MaxHistoryVMs = 24
)

// Params captures every input that determines the generated workload
// bytes. The generator configs are the *resolved* ones — run seed already
// folded in, defaults that depend on the cluster (VM capacity) already
// applied — so equal Params always generate equal traces.
type Params struct {
	// VMCaps is the per-VM capacity list of the simulated cluster; the
	// residents reserve shares of it and the first entry seeds the
	// job-generator capacity defaults.
	VMCaps []resource.Vector

	// Residents is the resolved resident-trace config (seed folded,
	// horizon raised to the run length).
	Residents trace.ResidentConfig

	// Jobs is the resolved short-job config (seed folded, NumJobs,
	// ArrivalSpan and VMCapacity set). NumJobs == 0 generates no short
	// jobs (the explicit-trace path).
	Jobs trace.Config

	// Long is the resolved long-job config; NumJobs == 0 disables the
	// long-lived population entirely.
	Long trace.LongJobConfig
}

// Key returns the content address of the workload these Params generate:
// a hex SHA-256 of the canonical encoding. Equal Params have equal keys;
// any differing field yields a different key.
func (p Params) Key() string {
	h := sha256.New()
	buf := make([]byte, 8)
	w := func(vs ...float64) {
		for _, v := range vs {
			binary.LittleEndian.PutUint64(buf, math.Float64bits(v))
			h.Write(buf)
		}
	}
	wi := func(vs ...int64) {
		for _, v := range vs {
			binary.LittleEndian.PutUint64(buf, uint64(v))
			h.Write(buf)
		}
	}
	// Version tag: bump when the encoding or the generators' seed
	// derivations change shape.
	h.Write([]byte("workload-v1"))
	wi(int64(len(p.VMCaps)))
	for _, c := range p.VMCaps {
		for k := 0; k < resource.NumKinds; k++ {
			w(c[k])
		}
	}
	r := p.Residents
	wi(r.Seed, int64(r.Horizon))
	w(r.ReservedShare, r.MeanUseShare, r.Fluctuation, r.JumpProb)
	j := p.Jobs
	wi(j.Seed, int64(j.NumJobs), int64(j.ArrivalSpan), int64(j.Arrivals), int64(j.MeanDuration))
	w(j.SLOFactor, j.Fluctuation)
	for k := 0; k < resource.NumKinds; k++ {
		w(j.VMCapacity[k])
	}
	w(j.ClassWeights[0], j.ClassWeights[1], j.ClassWeights[2], j.ClassWeights[3])
	l := p.Long
	wi(l.Seed, int64(l.NumJobs), int64(l.ArrivalSpan), int64(l.MinDuration), int64(l.MaxDuration))
	w(l.ReservedShare, l.MeanUseShare, l.SLOFactor)
	for k := 0; k < resource.NumKinds; k++ {
		w(l.VMCapacity[k])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Snapshot bundles one fully generated workload: immutable after Build,
// safe to share read-only across concurrent simulation runs.
type Snapshot struct {
	params Params
	key    string

	residents []*job.Job
	shortJobs []*job.Job
	longJobs  []*job.Job

	histOnce sync.Once
	history  []*job.Job
	histErr  error

	tabOnce  sync.Once
	tables   *ResidentTables
	tabBytes atomic.Int64

	bytes int64
}

// Build generates the workload for the given Params. The history trace is
// generated lazily on first use (only CORP consumes it), guarded by a
// sync.Once so concurrent runs share one deterministic generation.
func Build(p Params) (*Snapshot, error) {
	if len(p.VMCaps) == 0 {
		return nil, fmt.Errorf("workload: no VM capacities")
	}
	// Deep-copy the caps so later caller mutations cannot skew the lazy
	// history generation or the recorded params.
	caps := make([]resource.Vector, len(p.VMCaps))
	copy(caps, p.VMCaps)
	p.VMCaps = caps

	s := &Snapshot{params: p, key: p.Key()}
	var err error
	if s.residents, err = trace.GenerateResidents(p.Residents, p.VMCaps, ResidentFirstID); err != nil {
		return nil, fmt.Errorf("workload: residents: %w", err)
	}
	if s.shortJobs, err = trace.GenerateShortJobs(p.Jobs); err != nil {
		return nil, fmt.Errorf("workload: short jobs: %w", err)
	}
	if p.Long.NumJobs > 0 {
		if s.longJobs, err = trace.GenerateLongJobs(p.Long, LongFirstID); err != nil {
			return nil, fmt.Errorf("workload: long jobs: %w", err)
		}
	}
	s.bytes = jobsBytes(s.residents) + jobsBytes(s.shortJobs) + jobsBytes(s.longJobs)
	return s, nil
}

// Key returns the snapshot's content address.
func (s *Snapshot) Key() string { return s.key }

// Params returns a copy of the inputs the snapshot was built from (the
// VMCaps slice is shared read-only).
func (s *Snapshot) Params() Params { return s.params }

// Residents returns the per-VM resident jobs. Read-only; one entry per VM
// capacity in Params.VMCaps.
func (s *Snapshot) Residents() []*job.Job { return s.residents }

// ShortJobs returns the short-lived job specs, sorted by arrival slot with
// arrivals in [0, ArrivalSpan) — the simulator applies its warmup offset on
// per-run runtime state, never on these shared specs. Read-only.
func (s *Snapshot) ShortJobs() []*job.Job { return s.shortJobs }

// LongJobs returns the long-lived service job specs (nil when
// Params.Long.NumJobs == 0). Read-only.
func (s *Snapshot) LongJobs() []*job.Job { return s.longJobs }

// History returns the CORP pre-deployment history residents and their
// horizon in slots, generating them on first call. Read-only.
func (s *Snapshot) History() ([]*job.Job, int, error) {
	s.histOnce.Do(func() {
		histCfg := s.params.Residents
		histCfg.Seed ^= HistorySeedSalt
		histCfg.Horizon = HistoryHorizon
		n := len(s.params.VMCaps)
		if n > MaxHistoryVMs {
			n = MaxHistoryVMs
		}
		s.history, s.histErr = trace.GenerateResidents(histCfg, s.params.VMCaps[:n], HistoryFirstID)
		if s.histErr != nil {
			s.histErr = fmt.Errorf("workload: history residents: %w", s.histErr)
		}
	})
	return s.history, HistoryHorizon, s.histErr
}

// Bytes returns the approximate payload size of the generated traces
// (usage series plus spec overhead), excluding the lazy history and
// resident tables until they have been generated.
func (s *Snapshot) Bytes() int64 { return s.bytes + s.tabBytes.Load() }

// jobsBytes approximates the retained size of a generated job population.
func jobsBytes(jobs []*job.Job) int64 {
	const vecBytes = resource.NumKinds * 8
	const specOverhead = 64 // ID, class, arrival, duration, request, header
	var n int64
	for _, j := range jobs {
		n += specOverhead + int64(len(j.Usage))*vecBytes
	}
	return n
}
