package workload

import (
	"sync"
	"testing"

	"repro/internal/resource"
	"repro/internal/trace"
)

func testParams(seed int64) Params {
	caps := make([]resource.Vector, 8)
	for i := range caps {
		caps[i] = resource.Vector{4, 16, 180}
	}
	return Params{
		VMCaps: caps,
		Residents: trace.ResidentConfig{
			Seed:          seed,
			Horizon:       300,
			ReservedShare: 0.6,
			MeanUseShare:  0.35,
		},
		Jobs: trace.Config{
			Seed:        seed,
			NumJobs:     50,
			ArrivalSpan: 60,
			VMCapacity:  resource.Vector{4, 16, 180},
		},
		Long: trace.LongJobConfig{
			Seed:        seed,
			NumJobs:     3,
			ArrivalSpan: 60,
			VMCapacity:  resource.Vector{4, 16, 180},
		},
	}
}

func TestKeyDeterministicAndDistinct(t *testing.T) {
	base := testParams(42)
	if base.Key() != base.Key() {
		t.Fatal("Key not deterministic")
	}
	if got := testParams(42).Key(); got != base.Key() {
		t.Fatalf("identical params produced different keys: %s vs %s", got, base.Key())
	}

	// Every single-field perturbation must change the key.
	variants := map[string]Params{
		"resident seed": func() Params { p := testParams(42); p.Residents.Seed++; return p }(),
		"job seed":      func() Params { p := testParams(42); p.Jobs.Seed++; return p }(),
		"long seed":     func() Params { p := testParams(42); p.Long.Seed++; return p }(),
		"horizon":       func() Params { p := testParams(42); p.Residents.Horizon++; return p }(),
		"num jobs":      func() Params { p := testParams(42); p.Jobs.NumJobs++; return p }(),
		"arrivals":      func() Params { p := testParams(42); p.Jobs.Arrivals = trace.ArrivalBursty; return p }(),
		"class weights": func() Params { p := testParams(42); p.Jobs.ClassWeights[1] = 0.9; return p }(),
		"fluctuation":   func() Params { p := testParams(42); p.Residents.Fluctuation = 0.7; return p }(),
		"long jobs":     func() Params { p := testParams(42); p.Long.NumJobs = 0; return p }(),
		"vm count":      func() Params { p := testParams(42); p.VMCaps = p.VMCaps[:4]; return p }(),
		"vm capacity":   func() Params { p := testParams(42); p.VMCaps[0] = resource.Vector{8, 32, 360}; return p }(),
	}
	seen := map[string]string{base.Key(): "base"}
	for name, p := range variants {
		k := p.Key()
		if prev, dup := seen[k]; dup {
			t.Errorf("variant %q collides with %q", name, prev)
		}
		seen[k] = name
	}
}

func TestBuildPopulations(t *testing.T) {
	p := testParams(7)
	s, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Key() != p.Key() {
		t.Errorf("snapshot key %s != params key %s", s.Key(), p.Key())
	}
	if got := len(s.Residents()); got != len(p.VMCaps) {
		t.Errorf("residents = %d, want %d", got, len(p.VMCaps))
	}
	if got := len(s.ShortJobs()); got != p.Jobs.NumJobs {
		t.Errorf("short jobs = %d, want %d", got, p.Jobs.NumJobs)
	}
	if got := len(s.LongJobs()); got != p.Long.NumJobs {
		t.Errorf("long jobs = %d, want %d", got, p.Long.NumJobs)
	}
	if s.Bytes() <= 0 {
		t.Errorf("Bytes() = %d, want > 0", s.Bytes())
	}
	if s.Residents()[0].ID != ResidentFirstID {
		t.Errorf("first resident ID = %d, want %d", s.Residents()[0].ID, ResidentFirstID)
	}
	if s.LongJobs()[0].ID != LongFirstID {
		t.Errorf("first long ID = %d, want %d", s.LongJobs()[0].ID, LongFirstID)
	}

	hist, horizon, err := s.History()
	if err != nil {
		t.Fatal(err)
	}
	if horizon != HistoryHorizon {
		t.Errorf("history horizon = %d, want %d", horizon, HistoryHorizon)
	}
	if len(hist) != len(p.VMCaps) { // 8 VMs < MaxHistoryVMs
		t.Errorf("history residents = %d, want %d", len(hist), len(p.VMCaps))
	}
	if hist[0].ID != HistoryFirstID {
		t.Errorf("first history ID = %d, want %d", hist[0].ID, HistoryFirstID)
	}
	// Lazy generation must be stable across calls.
	hist2, _, _ := s.History()
	if &hist[0] != &hist2[0] {
		t.Error("History() regenerated on second call")
	}

	// No long jobs when disabled.
	p2 := testParams(7)
	p2.Long.NumJobs = 0
	s2, err := Build(p2)
	if err != nil {
		t.Fatal(err)
	}
	if s2.LongJobs() != nil {
		t.Errorf("long jobs generated despite NumJobs=0")
	}
}

func TestBuildMatchesDirectGeneration(t *testing.T) {
	p := testParams(99)
	s, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := trace.GenerateResidents(p.Residents, p.VMCaps, ResidentFirstID)
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := trace.GenerateShortJobs(p.Jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(s.Residents()) || len(jobs) != len(s.ShortJobs()) {
		t.Fatal("population sizes differ from direct generation")
	}
	for i, j := range jobs {
		sj := s.ShortJobs()[i]
		if j.ID != sj.ID || j.Arrival != sj.Arrival || j.Duration != sj.Duration || j.Request != sj.Request {
			t.Fatalf("short job %d differs from direct generation", i)
		}
		for k, u := range j.Usage {
			if u != sj.Usage[k] {
				t.Fatalf("short job %d usage slot %d differs", i, k)
			}
		}
	}
	for i, r := range res {
		sr := s.Residents()[i]
		if r.ID != sr.ID || len(r.Usage) != len(sr.Usage) {
			t.Fatalf("resident %d differs from direct generation", i)
		}
	}
}

func TestCacheHitMiss(t *testing.T) {
	c := NewCache(8)
	p := testParams(1)
	s1, err := c.Get(p)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := c.Get(p)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Error("identical params returned distinct snapshots")
	}
	if _, err := c.Get(testParams(2)); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 2 {
		t.Errorf("stats = %+v, want 1 hit / 2 misses", st)
	}
	if st.Entries != 2 {
		t.Errorf("entries = %d, want 2", st.Entries)
	}
	if st.Bytes <= 0 {
		t.Errorf("bytes = %d, want > 0", st.Bytes)
	}

	c.Reset()
	st = c.Stats()
	if st.Hits != 0 || st.Misses != 0 || st.Entries != 0 || st.Bytes != 0 {
		t.Errorf("after Reset stats = %+v, want zeroes", st)
	}
}

func TestCacheBuildError(t *testing.T) {
	c := NewCache(8)
	var bad Params // no VMCaps → Build fails
	if _, err := c.Get(bad); err == nil {
		t.Fatal("expected error for empty params")
	}
	if st := c.Stats(); st.Entries != 0 {
		t.Errorf("failed build left %d entries resident", st.Entries)
	}
	// Retry still errors (not a cached nil snapshot).
	if _, err := c.Get(bad); err == nil {
		t.Fatal("expected error on retry")
	}
	if st := c.Stats(); st.Misses != 2 {
		t.Errorf("misses = %d, want 2 (failed builds are not cached)", st.Misses)
	}
}

func TestCacheEviction(t *testing.T) {
	c := NewCache(2)
	for seed := int64(0); seed < 4; seed++ {
		if _, err := c.Get(testParams(seed)); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Entries > 2 {
		t.Errorf("entries = %d, want ≤ 2", st.Entries)
	}
	if st.Evictions == 0 {
		t.Error("expected evictions at capacity")
	}
}

func TestCacheConcurrentSingleflight(t *testing.T) {
	c := NewCache(8)
	p := testParams(5)
	const goroutines = 16
	snaps := make([]*Snapshot, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s, err := c.Get(p)
			if err != nil {
				t.Error(err)
				return
			}
			// Exercise the lazy history path concurrently too.
			if _, _, err := s.History(); err != nil {
				t.Error(err)
			}
			snaps[i] = s
		}(i)
	}
	wg.Wait()
	for i := 1; i < goroutines; i++ {
		if snaps[i] != snaps[0] {
			t.Fatalf("goroutine %d got a distinct snapshot", i)
		}
	}
	if st := c.Stats(); st.Misses != 1 {
		t.Errorf("misses = %d, want exactly 1 (singleflight)", st.Misses)
	}
}

func TestDefaultCacheToggle(t *testing.T) {
	if !Default.Enabled() {
		t.Error("Default cache should start enabled")
	}
	Default.SetEnabled(false)
	if Default.Enabled() {
		t.Error("SetEnabled(false) did not stick")
	}
	Default.SetEnabled(true)
}
