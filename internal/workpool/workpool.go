// Package workpool coordinates a process-wide worker budget shared by the
// outer sweep runner (sim.RunMany) and the intra-run prediction engines,
// so nested parallelism composes without oversubscribing the machine:
// outer runs claim slots for the duration of the sweep, and each inner
// engine sizes itself from whatever remains when its run starts.
//
// Claims are advisory accounting, not a semaphore: a caller that was
// granted fewer slots than requested still makes progress (at worst on a
// single worker), and an explicit worker count always runs at its
// requested width — the budget only steers the auto-sizing path. Results
// never depend on how many slots a claim was granted; worker counts affect
// wall time only.
package workpool

import (
	"runtime"
	"sync/atomic"
)

// claimed is the number of worker slots currently claimed process-wide.
var claimed atomic.Int64

// Limit returns the total budget: GOMAXPROCS at the time of the call.
func Limit() int { return runtime.GOMAXPROCS(0) }

// InUse returns how many slots are currently claimed process-wide (never
// negative, and never above Limit even if racing claims momentarily
// overshoot). Farm workers report it in heartbeats so the dispatcher's
// status shows per-worker engine saturation.
func InUse() int {
	n := int(claimed.Load())
	if n < 0 {
		return 0
	}
	if limit := Limit(); n > limit {
		return limit
	}
	return n
}

// Available returns how many slots are currently unclaimed (never
// negative).
func Available() int {
	free := Limit() - int(claimed.Load())
	if free < 0 {
		return 0
	}
	return free
}

// ClaimUpTo claims up to n slots and returns how many were actually
// granted (possibly zero). Callers must Release exactly the granted count
// when done.
func ClaimUpTo(n int) int {
	if n <= 0 {
		return 0
	}
	for {
		cur := claimed.Load()
		free := int64(Limit()) - cur
		if free <= 0 {
			return 0
		}
		grant := int64(n)
		if grant > free {
			grant = free
		}
		if claimed.CompareAndSwap(cur, cur+grant) {
			return int(grant)
		}
	}
}

// Release returns n previously granted slots to the budget.
func Release(n int) {
	if n <= 0 {
		return
	}
	claimed.Add(int64(-n))
}
