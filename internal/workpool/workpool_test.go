package workpool

import (
	"sync"
	"testing"
)

// reset drains any leaked claims between tests.
func reset() { claimed.Store(0) }

func TestClaimUpToBounds(t *testing.T) {
	reset()
	limit := Limit()
	if Available() != limit {
		t.Fatalf("fresh budget: available %d, want %d", Available(), limit)
	}
	got := ClaimUpTo(limit + 5)
	if got != limit {
		t.Fatalf("over-claim granted %d, want %d", got, limit)
	}
	if Available() != 0 {
		t.Fatalf("available %d after full claim", Available())
	}
	if extra := ClaimUpTo(1); extra != 0 {
		t.Fatalf("claim on empty budget granted %d", extra)
	}
	Release(got)
	if Available() != limit {
		t.Fatalf("release did not restore budget: %d", Available())
	}
}

func TestInUseTracksClaims(t *testing.T) {
	reset()
	if InUse() != 0 {
		t.Fatalf("fresh budget: in use %d, want 0", InUse())
	}
	got := ClaimUpTo(1)
	if InUse() != got {
		t.Fatalf("in use %d after claiming %d", InUse(), got)
	}
	if InUse()+Available() != Limit() {
		t.Fatalf("in use %d + available %d != limit %d", InUse(), Available(), Limit())
	}
	Release(got)
	if InUse() != 0 {
		t.Fatalf("in use %d after release", InUse())
	}
}

func TestClaimZeroAndNegative(t *testing.T) {
	reset()
	if ClaimUpTo(0) != 0 || ClaimUpTo(-3) != 0 {
		t.Fatal("non-positive claims must grant nothing")
	}
	Release(0)
	Release(-2)
	if Available() != Limit() {
		t.Fatalf("no-op releases changed the budget: %d", Available())
	}
}

// TestConcurrentClaims hammers the budget from many goroutines: the total
// outstanding claim must never exceed the limit, and everything released
// must restore a full budget.
func TestConcurrentClaims(t *testing.T) {
	reset()
	var wg sync.WaitGroup
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				n := ClaimUpTo(1 + g%3)
				if int(claimed.Load()) > Limit() {
					t.Errorf("claimed exceeds limit")
				}
				Release(n)
			}
		}(g)
	}
	wg.Wait()
	if Available() != Limit() {
		t.Fatalf("budget leaked: available %d, want %d", Available(), Limit())
	}
}
